package fleet

import (
	"math"
	"math/rand/v2"
	"testing"

	"cellcars/internal/geo"
)

func testPopulation(t *testing.T, n int) ([]Car, *geo.World) {
	t.Helper()
	world := geo.DefaultWorld(40)
	rng := rand.New(rand.NewPCG(10, 20))
	return Generate(DefaultConfig(n), world, rng), world
}

func TestGenerateBasics(t *testing.T) {
	cars, world := testPopulation(t, 5000)
	if len(cars) != 5000 {
		t.Fatalf("cars = %d", len(cars))
	}
	for i, c := range cars {
		if c.ID != uint64(i) {
			t.Fatalf("car %d has id %d", i, c.ID)
		}
		if !world.Bounds.Contains(c.Home) && world.Bounds.Clamp(c.Home) != c.Home {
			t.Fatalf("car %d home outside world", i)
		}
		if !world.Bounds.Contains(c.Work) && world.Bounds.Clamp(c.Work) != c.Work {
			t.Fatalf("car %d work outside world", i)
		}
		if c.TZOffsetSeconds != -5*3600 {
			t.Fatalf("car %d tz = %d", i, c.TZOffsetSeconds)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	world := geo.DefaultWorld(40)
	a := Generate(DefaultConfig(100), world, rand.New(rand.NewPCG(1, 1)))
	b := Generate(DefaultConfig(100), world, rand.New(rand.NewPCG(1, 1)))
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("car %d differs between runs", i)
		}
	}
}

func TestGenerateArchetypeMix(t *testing.T) {
	cars, _ := testPopulation(t, 20000)
	counts := map[Archetype]int{}
	for _, c := range cars {
		counts[c.Archetype]++
	}
	mix := DefaultMix()
	for a, want := range mix {
		got := float64(counts[a]) / float64(len(cars))
		if math.Abs(got-want) > 0.02+want*0.25 {
			t.Errorf("archetype %v: frequency %.4f, want ~%.4f", a, got, want)
		}
	}
}

func TestGenerateFaultFractions(t *testing.T) {
	cars, _ := testPopulation(t, 50000)
	sticky, c5 := 0, 0
	for _, c := range cars {
		if c.Sticky {
			sticky++
		}
		if c.Modem == ModemNextGen {
			c5++
		}
	}
	stickyFrac := float64(sticky) / float64(len(cars))
	if stickyFrac < 0.01 || stickyFrac > 0.035 {
		t.Fatalf("sticky fraction %.4f, want ~0.02", stickyFrac)
	}
	// C5 capability is ~0.006%: with 50k cars expect 0–4.
	if c5 > 25 {
		t.Fatalf("C5-capable cars = %d, should be near zero", c5)
	}
}

func TestGenerateModemMix(t *testing.T) {
	cars, _ := testPopulation(t, 50000)
	counts := map[Modem]int{}
	for _, c := range cars {
		counts[c.Modem]++
	}
	n := float64(len(cars))
	everC4 := float64(counts[ModemFullNo3G]+counts[ModemFull]+counts[ModemNextGen]) / n
	if everC4 < 0.77 || everC4 > 0.85 {
		t.Fatalf("C4-capable fraction %.3f, want ~0.808", everC4)
	}
	ever3G := float64(counts[Modem3GOnly]+counts[ModemNoC4]+counts[ModemFull]+counts[ModemNextGen]) / n
	if ever3G < 0.86 || ever3G > 0.92 {
		t.Fatalf("3G-capable fraction %.3f, want ~0.892", ever3G)
	}
	lte := float64(len(cars)-counts[Modem3GOnly]) / n
	if lte < 0.97 || lte > 0.995 {
		t.Fatalf("LTE-capable fraction %.3f, want ~0.987", lte)
	}
}

func TestGenerateHomeDensityMix(t *testing.T) {
	cars, world := testPopulation(t, 20000)
	counts := map[geo.Density]int{}
	for _, c := range cars {
		counts[world.DensityAt(c.Home)]++
	}
	urbanFrac := float64(counts[geo.Urban]) / float64(len(cars))
	if urbanFrac < 0.15 || urbanFrac > 0.30 {
		t.Fatalf("urban home fraction %.3f, want ~0.22", urbanFrac)
	}
	if counts[geo.Suburban] == 0 || counts[geo.Rural] == 0 {
		t.Fatalf("density classes missing: %v", counts)
	}
}

func TestCommutersHeadDowntown(t *testing.T) {
	cars, world := testPopulation(t, 5000)
	c := world.Bounds.Center()
	var commuterDist, otherDist float64
	var nc, no int
	for _, car := range cars {
		d := car.Work.Dist(c)
		switch car.Archetype {
		case CommuterBusy, CommuterEarly, Heavy, NightShift:
			commuterDist += d
			nc++
		default:
			otherDist += d
			no++
		}
	}
	if nc == 0 || no == 0 {
		t.Skip("degenerate mix")
	}
	if commuterDist/float64(nc) >= otherDist/float64(no) {
		t.Fatalf("commuter work (%.2f km from core) not closer than others (%.2f km)",
			commuterDist/float64(nc), otherDist/float64(no))
	}
}

func TestGeneratePanics(t *testing.T) {
	world := geo.DefaultWorld(30)
	rng := rand.New(rand.NewPCG(1, 1))
	cases := map[string]func(){
		"zero cars": func() { Generate(DefaultConfig(0), world, rng) },
		"nil world": func() { Generate(DefaultConfig(10), nil, rng) },
		"empty mix": func() {
			cfg := DefaultConfig(10)
			cfg.Mix = map[Archetype]float64{}
			Generate(cfg, world, rng)
		},
	}
	for name, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestPlansCoverage(t *testing.T) {
	for a := Archetype(0); a < NumArchetypes; a++ {
		plans := a.Plans()
		if len(plans) == 0 {
			t.Fatalf("archetype %v has no plans", a)
		}
		anyDay := false
		for _, p := range plans {
			if p.Prob <= 0 || p.Prob > 1 {
				t.Fatalf("%v plan has probability %v", a, p.Prob)
			}
			if p.DurMin <= 0 {
				t.Fatalf("%v plan has non-positive duration", a)
			}
			if p.StartHour < 0 || p.StartHour >= 24 {
				t.Fatalf("%v plan starts at hour %v", a, p.StartHour)
			}
			for _, d := range p.Days {
				if d {
					anyDay = true
				}
			}
		}
		if !anyDay {
			t.Fatalf("archetype %v has no active days", a)
		}
	}
	if Archetype(99).Plans() != nil {
		t.Fatal("unknown archetype should have nil plans")
	}
}

// TestPresenceProbabilityBands verifies the calibration arithmetic that
// underlies Figure 2 / Table 1: the expected fraction of cars making at
// least one trip on a weekday should be near 76-80%, and lower on
// weekends.
func TestPresenceProbabilityBands(t *testing.T) {
	mix := DefaultMix()
	presence := func(day int) float64 {
		var total, weight float64
		for a, w := range mix {
			pNone := 1.0
			for _, p := range a.Plans() {
				if p.Days[day] {
					pNone *= 1 - p.Prob
				}
			}
			total += w * (1 - pNone)
			weight += w
		}
		return total / weight
	}
	wed := presence(2)
	sat := presence(5)
	sun := presence(6)
	if wed < 0.70 || wed > 0.88 {
		t.Fatalf("weekday presence %.3f outside [0.70, 0.88]", wed)
	}
	if sat >= wed {
		t.Fatalf("saturday presence %.3f not below weekday %.3f", sat, wed)
	}
	if sun >= sat {
		t.Fatalf("sunday presence %.3f not below saturday %.3f", sun, sat)
	}
	if sun < 0.5 {
		t.Fatalf("sunday presence %.3f too low", sun)
	}
}

// TestRareDaysExpectation checks the expected days-on-network per
// archetype against the Figure 6 / Table 2 segmentation bands.
func TestRareDaysExpectation(t *testing.T) {
	days := func(a Archetype) float64 {
		var sum float64
		for day := 0; day < 7; day++ {
			pNone := 1.0
			for _, p := range a.Plans() {
				if p.Days[day] {
					pNone *= 1 - p.Prob
				}
			}
			sum += 1 - pNone
		}
		return sum / 7 * 90
	}
	if d := days(Rare); d > 10 {
		t.Fatalf("rare archetype expects %.1f days, must be <= 10", d)
	}
	if d := days(Infrequent); d < 11 || d > 30 {
		t.Fatalf("infrequent archetype expects %.1f days, want (10, 30]", d)
	}
	if d := days(CommuterBusy); d < 55 {
		t.Fatalf("commuter archetype expects %.1f days, want >= 55", d)
	}
	if d := days(Heavy); d < 75 {
		t.Fatalf("heavy archetype expects %.1f days, want >= 75", d)
	}
}

func TestArchetypeAndKindStrings(t *testing.T) {
	if CommuterBusy.String() != "commuter-busy" || Rare.String() != "rare" {
		t.Fatal("archetype names")
	}
	if Archetype(77).String() != "archetype(77)" {
		t.Fatal("unknown archetype name")
	}
	if KindCommuteOut.String() != "commute-out" || KindLong.String() != "long-drive" {
		t.Fatal("kind names")
	}
	if TripKind(9).String() != "trip(9)" {
		t.Fatal("unknown kind name")
	}
}

func TestGenerateGrowthFraction(t *testing.T) {
	world := geo.DefaultWorld(40)
	cfg := DefaultConfig(20000)
	cfg.GrowthDays = 90
	cars := Generate(cfg, world, rand.New(rand.NewPCG(8, 8)))
	late := 0
	maxFrom := 0
	for _, c := range cars {
		if c.ActiveFromDay > 0 {
			late++
			if c.ActiveFromDay > maxFrom {
				maxFrom = c.ActiveFromDay
			}
		}
	}
	frac := float64(late) / float64(len(cars))
	if frac < 0.02 || frac > 0.06 {
		t.Fatalf("growth fraction %.4f, want ~0.04", frac)
	}
	if maxFrom >= 90 {
		t.Fatalf("activation day %d outside window", maxFrom)
	}
}

func TestGenerateGrowthDisabledByDefault(t *testing.T) {
	world := geo.DefaultWorld(40)
	cars := Generate(DefaultConfig(1000), world, rand.New(rand.NewPCG(9, 9)))
	for _, c := range cars {
		if c.ActiveFromDay != 0 {
			t.Fatalf("car %d active from day %d with GrowthDays=0", c.ID, c.ActiveFromDay)
		}
	}
}
