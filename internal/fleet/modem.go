package fleet

import (
	"fmt"
	"math/rand/v2"

	"cellcars/internal/radio"
)

// Modem is a car's cellular modem capability class. A single OEM ships
// several modem generations over the years; the class determines which
// carriers the car can ever use, which drives Table 3's "% cars" row
// (C1 98.7%, C2 89.2%, C3 98.7%, C4 80.8%, C5 0.006%).
type Modem uint8

// Modem classes, from oldest to newest hardware.
const (
	// Modem3GOnly is legacy hardware that can only use the 3G carrier
	// C2 — the "legacy support" population of §4.6.
	Modem3GOnly Modem = iota
	// ModemNoC4No3G supports only the original LTE layers C1 and C3.
	ModemNoC4No3G
	// ModemNoC4 supports C1, C3 and the 3G fallback C2.
	ModemNoC4
	// ModemFullNo3G supports all LTE layers C1, C3, C4 but has 3G
	// fallback disabled.
	ModemFullNo3G
	// ModemFull supports C1–C4 plus 3G fallback.
	ModemFull
	// ModemNextGen additionally supports the new C5 carrier; almost no
	// car in the study population carries one.
	ModemNextGen
)

// NumModems is the number of modem classes.
const NumModems = 6

// String returns the modem class name.
func (m Modem) String() string {
	switch m {
	case Modem3GOnly:
		return "3g-only"
	case ModemNoC4No3G:
		return "lte-basic"
	case ModemNoC4:
		return "lte-basic-3g"
	case ModemFullNo3G:
		return "lte-full"
	case ModemFull:
		return "lte-full-3g"
	case ModemNextGen:
		return "next-gen"
	default:
		return fmt.Sprintf("modem(%d)", uint8(m))
	}
}

// Capabilities returns the carriers the modem can use.
func (m Modem) Capabilities() []radio.CarrierID {
	switch m {
	case Modem3GOnly:
		return []radio.CarrierID{radio.C2}
	case ModemNoC4No3G:
		return []radio.CarrierID{radio.C1, radio.C3}
	case ModemNoC4:
		return []radio.CarrierID{radio.C1, radio.C2, radio.C3}
	case ModemFullNo3G:
		return []radio.CarrierID{radio.C1, radio.C3, radio.C4}
	case ModemFull:
		return []radio.CarrierID{radio.C1, radio.C2, radio.C3, radio.C4}
	case ModemNextGen:
		return []radio.CarrierID{radio.C1, radio.C2, radio.C3, radio.C4, radio.C5}
	default:
		return nil
	}
}

// Supports reports whether the modem can use the carrier.
func (m Modem) Supports(c radio.CarrierID) bool {
	for _, have := range m.Capabilities() {
		if have == c {
			return true
		}
	}
	return false
}

// DefaultModemMix is the modem class distribution solved from the
// paper's Table 3 "% cars ever on carrier" row:
//
//	ever C1 = ever C3 = 98.7%  → 1.3% are 3G-only
//	ever C2 = 89.2%            → 9.0% + 1.8% have 3G disabled
//	ever C4 = 80.8%            → 16.1% + 1.8% lack C4
//	ever C5 = 0.006%           → a sliver of next-gen units
func DefaultModemMix() map[Modem]float64 {
	return map[Modem]float64{
		Modem3GOnly:   0.013,
		ModemNoC4No3G: 0.018,
		ModemNoC4:     0.161,
		ModemFullNo3G: 0.090,
		ModemFull:     0.71794,
		ModemNextGen:  0.00006,
	}
}

// sampleModem draws a modem class from the mix.
func sampleModem(mix map[Modem]float64, rng *rand.Rand) Modem {
	var total float64
	for m := Modem(0); m < NumModems; m++ {
		total += mix[m]
	}
	u := rng.Float64() * total
	for m := Modem(0); m < NumModems; m++ {
		u -= mix[m]
		if u <= 0 && mix[m] > 0 {
			return m
		}
	}
	return ModemFull
}
