// FOTA campaign planning: use the measurement pipeline's car
// segmentation to schedule a firmware rollout, then compare push
// policies on completion speed versus load pushed into busy cells —
// the management problem the paper's introduction motivates.
package main

import (
	"fmt"
	"log"
	"time"

	"cellcars"
)

func main() {
	cfg := cellcars.DefaultSceneConfig(1200)
	cfg.Seed = 7
	// A four-week campaign window keeps the example fast.
	cfg.Period = cellcars.NewPeriod(time.Date(2017, 1, 2, 0, 0, 0, 0, time.UTC), 28)
	scene := cellcars.NewScene(cfg)

	records, _, err := scene.GenerateAll()
	if err != nil {
		log.Fatalf("generate: %v", err)
	}
	clean, err := cellcars.ReadAll(cellcars.RemoveGhosts(cellcars.NewSliceReader(records)))
	if err != nil {
		log.Fatalf("clean: %v", err)
	}

	ctx := cellcars.AnalysisContext(scene)

	// Segment the population from its own history: rare cars get
	// priority; busy-hour cars need care.
	segments := cellcars.FOTASegments(clean, ctx, 3)
	rare := 0
	for _, s := range segments {
		if s.Rare {
			rare++
		}
	}
	fmt.Printf("campaign population: %d cars (%d rare)\n\n", len(segments), rare)

	base := cellcars.DefaultFOTAConfig(nil)
	base.UpdateMB = 500 // a hefty map+firmware bundle

	results := cellcars.CompareFOTA(clean, ctx, segments, base,
		cellcars.NaivePolicy{},
		cellcars.RandomizedPolicy{P: 0.25, Seed: 7},
		cellcars.SegmentAwarePolicy{BusyThreshold: scene.Load.BusyThreshold()},
	)

	fmt.Println(cellcars.FormatFOTAResults(results))
	fmt.Println("Reading the table: segment-aware keeps busy-cell bytes near zero")
	fmt.Println("(no 'pouring oil onto the fire', §4.3) at a small completion cost.")
}
