// Quickstart: generate a small synthetic connected-car population,
// run the full measurement pipeline, and print the headline numbers —
// the fastest way to see the cellcars API end to end.
package main

import (
	"fmt"
	"log"

	"cellcars"
)

func main() {
	// A scene bundles geography, radio network, PRB load model and car
	// fleet. 1000 cars over the default 90-day window is enough to see
	// every population statistic; crank it up for sharper numbers.
	cfg := cellcars.DefaultSceneConfig(1000)
	cfg.Seed = 42
	scene := cellcars.NewScene(cfg)

	records, stats, err := scene.GenerateAll()
	if err != nil {
		log.Fatalf("generate: %v", err)
	}
	fmt.Printf("generated %d radio connections from %d cars over %d days\n",
		stats.Records, len(scene.Cars), cfg.Period.Days())
	fmt.Printf("injected faults: %d one-hour ghosts, %d stuck teardowns\n\n",
		stats.Ghosts, stats.Stuck)

	// Analyze applies the paper's preprocessing (§3) and every §4
	// analysis in one call.
	report, err := cellcars.Analyze(records, cellcars.AnalysisContext(scene), cellcars.AnalyzeOptions{
		BusyCells: scene.Load.VeryBusyCells(),
	})
	if err != nil {
		log.Fatalf("analyze: %v", err)
	}

	fmt.Println("Table 1 — daily presence by weekday:")
	fmt.Println(cellcars.FormatTable1(report))

	fmt.Printf("Figure 3 — time on network: mean %.1f%% of the study period "+
		"(%.1f%% after 600 s truncation)\n\n",
		report.Connected.FullMean*100, report.Connected.TruncMean*100)

	fmt.Println("Table 2 — car segmentation (rare/common × busy/non-busy):")
	fmt.Println(cellcars.FormatTable2(report))

	fmt.Printf("§4.5 — handovers per mobility session: median %.0f, p70 %.0f, p90 %.0f "+
		"(%.0f%% across base stations)\n\n",
		report.Handovers.Median, report.Handovers.P70, report.Handovers.P90,
		report.Handovers.InterBSShare()*100)

	fmt.Println("Table 3 — carrier use:")
	fmt.Println(cellcars.FormatTable3(report))
}
