// Carrier lifecycle audit: the Table 3 / §4.6 workflow. Break the
// fleet's network usage down by carrier, then answer the question the
// paper's legacy discussion (and the San Francisco Muni 2G shutdown
// incident) raises: which cars lose service when the operator retires
// a carrier?
package main

import (
	"fmt"
	"log"
	"time"

	"cellcars"
)

func main() {
	cfg := cellcars.DefaultSceneConfig(3000)
	cfg.Seed = 23
	cfg.Period = cellcars.NewPeriod(time.Date(2017, 1, 2, 0, 0, 0, 0, time.UTC), 14)
	scene := cellcars.NewScene(cfg)

	records, _, err := scene.GenerateAll()
	if err != nil {
		log.Fatalf("generate: %v", err)
	}
	report, err := cellcars.Analyze(records, cellcars.AnalysisContext(scene), cellcars.AnalyzeOptions{})
	if err != nil {
		log.Fatalf("analyze: %v", err)
	}

	fmt.Println("Table 3 — carrier use across the fleet:")
	fmt.Println(cellcars.FormatTable3(report))

	// Cars observed *only* on the 3G carrier C2 are the ones stranded
	// by a 3G sunset: connected-car hardware outlives radio
	// generations (§4.6).
	onlyC2 := carsOnlyOn(records, 2)
	fmt.Printf("3G-sunset exposure: %d of %d observed cars (%.2f%%) used only C2\n",
		len(onlyC2), report.Carriers.TotalCars,
		100*float64(len(onlyC2))/float64(report.Carriers.TotalCars))
	fmt.Println("   (the paper's modem-capability story: car fleets need legacy",
		"\n    carriers long after phones have moved on)")

	// Conversely: how much headroom does the new high-band carrier C5
	// offer this fleet today? Essentially none — almost no modem
	// supports it.
	c5 := report.Carriers.CarsFrac[cellcars.CarrierID(5)]
	fmt.Printf("\nC5 adoption: %.4f%% of cars ever connected to the new carrier\n", c5*100)
}

// carsOnlyOn returns the cars all of whose connections used the given
// carrier id.
func carsOnlyOn(records []cellcars.Record, carrier uint8) map[cellcars.CarID]bool {
	sawOther := map[cellcars.CarID]bool{}
	sawIt := map[cellcars.CarID]bool{}
	for _, r := range records {
		if uint8(r.Cell.Carrier()) == carrier {
			sawIt[r.Car] = true
		} else {
			sawOther[r.Car] = true
		}
	}
	out := map[cellcars.CarID]bool{}
	for car := range sawIt {
		if !sawOther[car] {
			out[car] = true
		}
	}
	return out
}
