// Busy-cell clustering: the Figure 10/11 workflow. Find the radios
// whose average weekly PRB utilization exceeds 70%, cluster their
// car-concurrency profiles with k-means, and inspect one cell-week in
// detail — the view a capacity planner needs before approving a large
// FOTA campaign.
package main

import (
	"fmt"
	"log"
	"time"

	"cellcars"
)

func main() {
	cfg := cellcars.DefaultSceneConfig(1500)
	cfg.Seed = 11
	cfg.Period = cellcars.NewPeriod(time.Date(2017, 1, 2, 0, 0, 0, 0, time.UTC), 21)
	scene := cellcars.NewScene(cfg)

	records, _, err := scene.GenerateAll()
	if err != nil {
		log.Fatalf("generate: %v", err)
	}
	ctx := cellcars.AnalysisContext(scene)

	// The Figure 11 population: cells averaging >= 70% utilization over
	// the week. On the production network these would come from the
	// operator's performance counters.
	busy := scene.Load.VeryBusyCells()
	fmt.Printf("very busy radios (avg weekly UPRB >= %.0f%%): %d of %d cells\n\n",
		scene.Load.VeryBusyAvg()*100, len(busy), scene.Net.NumCells())
	if len(busy) < 2 {
		log.Fatal("population too small to cluster; increase the fleet or world size")
	}

	report, err := cellcars.Analyze(records, ctx, cellcars.AnalyzeOptions{BusyCells: busy})
	if err != nil {
		log.Fatalf("analyze: %v", err)
	}

	cl := report.Clusters
	fmt.Printf("k-means (k=2) over %d busy radios:\n", len(cl.Cells))
	fmt.Printf("  cluster 1: %3d cells, centroid peak %.1f concurrent cars\n",
		cl.Sizes[0], peak(cl.Centroids[0]))
	fmt.Printf("  cluster 2: %3d cells, centroid peak %.1f concurrent cars (%.1fx cluster 1)\n\n",
		cl.Sizes[1], peak(cl.Centroids[1]), cl.PeakRatio())

	// Drill into the hottest cell of the hot cluster, Figure 10 style.
	hot := hottestCell(cl)
	cw := cellcars.CellWeek(records, ctx, hot, 0)
	var maxCars float64
	var maxBin int
	for b, v := range cw.Concurrency {
		if v > maxCars {
			maxCars, maxBin = v, b
		}
	}
	day := maxBin / 96
	hhmm := time.Duration(maxBin%96) * 15 * time.Minute
	fmt.Printf("hottest busy radio %v, week 1:\n", hot)
	fmt.Printf("  peak concurrency: %.0f cars on %s at %02d:%02d (UPRB %.0f%%)\n",
		maxCars, []string{"Mon", "Tue", "Wed", "Thu", "Fri", "Sat", "Sun"}[day],
		int(hhmm.Hours()), int(hhmm.Minutes())%60, cw.Utilization[maxBin]*100)
	fmt.Println("\nPlanner's takeaway: any large download scheduled into the hot")
	fmt.Println("cluster's evening window shares the cell with dozens of cars (§4.4).")
}

func peak(xs []float64) float64 {
	var m float64
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// hottestCell returns the cell with the largest individual peak in the
// hot cluster (index 1 after the analysis orders clusters by peak).
func hottestCell(cl cellcars.BusyClusters) cellcars.CellKey {
	best := cl.Cells[0]
	bestPeak := -1.0
	for i, cell := range cl.Cells {
		if cl.Assignments[i] != 1 {
			continue
		}
		if p := peak(cl.Vectors[i]); p > bestPeak {
			bestPeak, best = p, cell
		}
	}
	return best
}
