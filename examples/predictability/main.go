// Predictability: the workflow the paper's discussion proposes
// ("possible per-car prediction models for efficient content
// delivery", §4.7). Learn each car's weekly appearance profile from
// the first weeks of history, backtest hourly presence prediction on
// the following weeks, and cluster the fleet into behavioural groups.
package main

import (
	"fmt"
	"log"
	"time"

	"cellcars"
)

func main() {
	cfg := cellcars.DefaultSceneConfig(1000)
	cfg.Seed = 5
	cfg.Period = cellcars.NewPeriod(time.Date(2017, 1, 2, 0, 0, 0, 0, time.UTC), 42) // 6 weeks
	scene := cellcars.NewScene(cfg)

	records, _, err := scene.GenerateAll()
	if err != nil {
		log.Fatalf("generate: %v", err)
	}
	clean, err := cellcars.ReadAll(cellcars.RemoveGhosts(cellcars.NewSliceReader(records)))
	if err != nil {
		log.Fatalf("clean: %v", err)
	}
	ctx := cellcars.AnalysisContext(scene)

	// Train on 4 weeks, evaluate hourly presence over the next 2.
	const trainWeeks, evalWeeks, threshold = 4, 2, 0.5
	fleet := cellcars.BacktestFleet(clean, ctx, trainWeeks, evalWeeks, threshold)
	fmt.Printf("fleet backtest: %d cars, mean predictability %.2f\n",
		fleet.Cars, fleet.MeanPredictability)
	fmt.Printf("overall hourly-presence prediction: precision %.2f, recall %.2f, F1 %.2f\n\n",
		fleet.Overall.Precision(), fleet.Overall.Recall(), fleet.Overall.F1())

	fmt.Println("by predictability quartile (lowest → highest):")
	for q, o := range fleet.ByPredictability {
		fmt.Printf("  Q%d: precision %.2f  recall %.2f  F1 %.2f\n",
			q+1, o.Precision(), o.Recall(), o.F1())
	}
	fmt.Println("\n→ the paper's premise holds: the more predictable the car, the")
	fmt.Println("  better content delivery can be planned around its appearances.")

	// Behavioural clustering (§1: "cars can be clustered according to
	// predictability in their behavior").
	clusters := cellcars.ClusterCars(clean, ctx, trainWeeks, 4, 9)
	fmt.Printf("\nbehavioural clusters (k=4) over %d cars:\n", fleet.Cars)
	days := []string{"Mon", "Tue", "Wed", "Thu", "Fri", "Sat", "Sun"}
	for i, c := range clusters {
		ph := c.PeakHour()
		fmt.Printf("  cluster %d: %4d cars, peak %s %02d:00, weekend share %.0f%%, predictability %.2f\n",
			i+1, len(c.Cars), days[ph/24], ph%24, c.WeekendShare()*100, c.MeanPredictability)
	}
}
