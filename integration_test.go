package cellcars_test

import (
	"testing"
	"time"

	"cellcars"
	"cellcars/internal/radio"
	"cellcars/internal/simtime"
)

// buildReport generates a medium synthetic scene and runs the full
// pipeline once, shared across the integration tests.
var e2eState struct {
	scene  *cellcars.Scene
	report *cellcars.Report
	built  bool
}

func fullReport(t *testing.T) (*cellcars.Scene, *cellcars.Report) {
	t.Helper()
	if e2eState.built {
		return e2eState.scene, e2eState.report
	}
	cfg := cellcars.DefaultSceneConfig(800)
	cfg.WorldSizeKm = 50
	cfg.Period = simtime.NewPeriod(time.Date(2017, 1, 2, 0, 0, 0, 0, time.UTC), 21)
	scene := cellcars.NewScene(cfg)
	records, stats, err := scene.GenerateAll()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Records == 0 {
		t.Fatal("no records generated")
	}
	report, err := cellcars.Analyze(records, cellcars.AnalysisContext(scene), cellcars.AnalyzeOptions{
		RareDays:  []int{2, 7},
		BusyCells: scene.Load.VeryBusyCells(),
	})
	if err != nil {
		t.Fatal(err)
	}
	e2eState.scene, e2eState.report, e2eState.built = scene, report, true
	return scene, report
}

// TestEndToEndPresence checks the Figure 2 / Table 1 band: most cars
// appear on the network on most days, with a weekend dip.
func TestEndToEndPresence(t *testing.T) {
	_, r := fullReport(t)
	rows := r.WeekdayRows
	if len(rows) != 8 {
		t.Fatalf("weekday rows = %d", len(rows))
	}
	overall := rows[7]
	if overall.CarsMean < 0.60 || overall.CarsMean > 0.92 {
		t.Fatalf("overall cars presence %.3f outside [0.60, 0.92] (paper: 0.76)", overall.CarsMean)
	}
	// Weekday presence above Sunday presence.
	wed, sun := rows[2], rows[6]
	if wed.CarsMean <= sun.CarsMean {
		t.Fatalf("Wednesday presence %.3f not above Sunday %.3f", wed.CarsMean, sun.CarsMean)
	}
	// Cells-with-cars fraction sits near the cars fraction (paper: 66%
	// vs 76%). The gap between the two is scale-dependent — with 1M
	// cars the cumulative cell union grows much faster than the daily
	// touch set — so at test scale we only pin the band, not the
	// ordering; the 90-day benchmark reports both numbers.
	if overall.CellsMean < 0.35 || overall.CellsMean > 0.95 {
		t.Fatalf("cells fraction %.3f outside [0.35, 0.95] (paper: 0.66)", overall.CellsMean)
	}
}

// TestEndToEndConnectedTime checks the Figure 3 band: cars spend a few
// percent of the study connected; truncation halves the number.
func TestEndToEndConnectedTime(t *testing.T) {
	_, r := fullReport(t)
	ct := r.Connected
	if ct.TruncMean < 0.01 || ct.TruncMean > 0.10 {
		t.Fatalf("truncated mean %.4f outside [0.01, 0.10] (paper: 0.04)", ct.TruncMean)
	}
	if ct.FullMean < ct.TruncMean*1.25 {
		t.Fatalf("full mean %.4f not clearly above truncated %.4f (paper: 2x)",
			ct.FullMean, ct.TruncMean)
	}
	if ct.FullP995 <= ct.FullMean {
		t.Fatal("99.5th percentile must exceed the mean")
	}
	if ct.FullP995 > 0.6 {
		t.Fatalf("p99.5 = %.3f implausibly high", ct.FullP995)
	}
}

// TestEndToEndDurations checks the Figure 9 band: short per-cell
// connections with a heavy truncated tail.
func TestEndToEndDurations(t *testing.T) {
	_, r := fullReport(t)
	d := r.Durations
	if d.Median < 40 || d.Median > 300 {
		t.Fatalf("median duration %.0f s outside [40, 300] (paper: 105 s)", d.Median)
	}
	if d.FullMean <= d.TruncMean {
		t.Fatal("full mean must exceed truncated mean")
	}
	if d.P73 > 600 {
		t.Fatalf("p73 = %.0f s beyond the truncation cap", d.P73)
	}
}

// TestEndToEndHandovers checks §4.5: a handful of inter-base-station
// handovers per mobility session, other kinds negligible.
func TestEndToEndHandovers(t *testing.T) {
	_, r := fullReport(t)
	h := r.Handovers
	if h.Sessions == 0 {
		t.Fatal("no mobility sessions")
	}
	if h.Median < 0 || h.Median > 6 {
		t.Fatalf("median handovers %.1f outside [0, 6] (paper: 2)", h.Median)
	}
	if h.P90 < h.Median || h.P90 > 25 {
		t.Fatalf("p90 handovers %.1f outside [median, 25] (paper: 9)", h.P90)
	}
	if share := h.InterBSShare(); share < 0.90 {
		t.Fatalf("inter-BS share %.3f; other kinds must be negligible", share)
	}
	// The negligible kinds still occur.
	others := h.ByKind[radio.HandoverInterSector] + h.ByKind[radio.HandoverInterCarrier] +
		h.ByKind[radio.HandoverInterTech]
	if others == 0 {
		t.Log("note: no non-BS handovers observed at this scale")
	}
}

// TestEndToEndCarriers checks Table 3's shape: C3 carries the most
// time, C5 is negligible, and the "ever used" column follows the
// modem capability mix.
func TestEndToEndCarriers(t *testing.T) {
	_, r := fullReport(t)
	u := r.Carriers
	tf := u.TimeFrac
	if !(tf[radio.C3] > tf[radio.C4] && tf[radio.C3] > tf[radio.C1] && tf[radio.C1] > tf[radio.C2]) {
		t.Fatalf("time shares out of shape: %v", tf)
	}
	if tf[radio.C3]+tf[radio.C4] < 0.55 {
		t.Fatalf("C3+C4 = %.3f, want >= 0.55 (paper: 0.74)", tf[radio.C3]+tf[radio.C4])
	}
	if tf[radio.C5] > 0.005 {
		t.Fatalf("C5 share %.5f not negligible", tf[radio.C5])
	}
	cf := u.CarsFrac
	if cf[radio.C1] < 0.90 || cf[radio.C3] < 0.90 {
		t.Fatalf("C1/C3 ever-used %.3f/%.3f, want >= 0.90 (paper: 0.987)", cf[radio.C1], cf[radio.C3])
	}
	if cf[radio.C4] < 0.65 || cf[radio.C4] > 0.92 {
		t.Fatalf("C4 ever-used %.3f outside [0.65, 0.92] (paper: 0.808)", cf[radio.C4])
	}
	if cf[radio.C2] < 0.60 || cf[radio.C2] > 0.97 {
		t.Fatalf("C2 ever-used %.3f outside [0.60, 0.97] (paper: 0.892)", cf[radio.C2])
	}
	if cf[radio.C5] > 0.01 {
		t.Fatalf("C5 ever-used %.5f, should be ~0 (paper: 0.00006)", cf[radio.C5])
	}
}

// TestEndToEndSegmentation checks Table 2's shape: a small rare
// segment, and busy-hour-dominant cars a small minority.
func TestEndToEndSegmentation(t *testing.T) {
	_, r := fullReport(t)
	if len(r.Segments) != 2 {
		t.Fatalf("segments = %d", len(r.Segments))
	}
	for _, seg := range r.Segments {
		total := seg.RareTotal() + seg.CommonTotal()
		if total < 0.999 || total > 1.001 {
			t.Fatalf("segmentation does not partition: %v", total)
		}
		busy := seg.RareBusy + seg.CommonBusy
		if busy > 0.25 {
			t.Fatalf("busy-hour cars %.3f; paper finds a small minority", busy)
		}
	}
	// The tighter rare threshold yields fewer rare cars.
	if r.Segments[0].RareTotal() > r.Segments[1].RareTotal() {
		t.Fatalf("rare(≤%d) %.3f > rare(≤%d) %.3f", r.Segments[0].RareDays,
			r.Segments[0].RareTotal(), r.Segments[1].RareDays, r.Segments[1].RareTotal())
	}
}

// TestEndToEndBusyTime checks Figure 7's shape: most cars spend little
// time in busy cells; a small tail lives there.
func TestEndToEndBusyTime(t *testing.T) {
	_, r := fullReport(t)
	bt := r.Busy
	if len(bt.FracByCar) == 0 {
		t.Fatal("no busy-time data")
	}
	if bt.Deciles[5] > 0.5 {
		t.Fatalf("median busy fraction %.3f; most cars should be low", bt.Deciles[5])
	}
	if bt.OverHalf > 0.3 {
		t.Fatalf("over-half fraction %.3f too large (paper: 0.024)", bt.OverHalf)
	}
	if bt.AllBusy > bt.OverHalf+1e-9 {
		t.Fatal("all-busy cars cannot exceed over-half cars")
	}
}

// TestEndToEndClusters checks Figure 11's shape: two clusters with the
// hotter one's concurrency peak well above the quieter one's.
func TestEndToEndClusters(t *testing.T) {
	scene, r := fullReport(t)
	if len(scene.Load.VeryBusyCells()) < 2 {
		t.Skip("too few very-busy cells at this scale")
	}
	if len(r.Clusters.Sizes) != 2 {
		t.Fatalf("cluster sizes: %v", r.Clusters.Sizes)
	}
	if ratio := r.Clusters.PeakRatio(); ratio < 1.2 {
		t.Fatalf("cluster peak ratio %.2f; paper finds ~5x", ratio)
	}
}

// TestEndToEndDaysHistogram checks Figure 6's shape: mass at high day
// counts (regular commuters) plus a small rare-car mass.
func TestEndToEndDaysHistogram(t *testing.T) {
	_, r := fullReport(t)
	h := r.DaysHist
	if h.Total() == 0 {
		t.Fatal("empty days histogram")
	}
	days := len(h.Counts)
	var lowMass, highMass int64
	for i, c := range h.Counts {
		if i < days/3 {
			lowMass += c
		}
		if i >= (2*days)/3 {
			highMass += c
		}
	}
	if highMass <= lowMass {
		t.Fatalf("days histogram inverted: low=%d high=%d (most cars are regulars)", lowMass, highMass)
	}
	if lowMass == 0 {
		t.Fatal("no rare cars in histogram")
	}
}

// TestEndToEndGhostCleaning verifies the §3 preprocessing is applied:
// the clean stream is smaller than the raw stream.
func TestEndToEndGhostCleaning(t *testing.T) {
	_, r := fullReport(t)
	if r.CleanRecords >= r.RawRecords {
		t.Fatalf("cleaning removed nothing: %d -> %d", r.RawRecords, r.CleanRecords)
	}
}

// TestEndToEndTrendLines sanity-checks the Figure 2 trend fits.
func TestEndToEndTrendLines(t *testing.T) {
	_, r := fullReport(t)
	if r.Presence.CarsTrend.N == 0 || r.Presence.CellsTrend.N == 0 {
		t.Fatal("missing trend fits")
	}
	if r.Presence.CarsTrend.R2 < 0 || r.Presence.CarsTrend.R2 > 1 {
		t.Fatalf("R² = %v", r.Presence.CarsTrend.R2)
	}
}
