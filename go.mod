module cellcars

go 1.22
