package cellcars_test

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"testing"
	"time"

	"cellcars"
	"cellcars/internal/cdr"
	"cellcars/internal/radio"
)

// facadeScene builds a tiny scene for exercising the public surface.
func facadeScene(t *testing.T) (*cellcars.Scene, []cellcars.Record, cellcars.Context) {
	t.Helper()
	cfg := cellcars.DefaultSceneConfig(150)
	cfg.WorldSizeKm = 40
	cfg.Period = cellcars.NewPeriod(time.Date(2017, 1, 2, 0, 0, 0, 0, time.UTC), 14)
	scene := cellcars.NewScene(cfg)
	records, _, err := scene.GenerateAll()
	if err != nil {
		t.Fatal(err)
	}
	return scene, records, cellcars.AnalysisContext(scene)
}

func TestFacadePeriods(t *testing.T) {
	if cellcars.DefaultPeriod().Days() != 90 {
		t.Fatal("default period")
	}
	p := cellcars.NewPeriod(time.Date(2017, 3, 1, 10, 0, 0, 0, time.UTC), 5)
	if p.Days() != 5 || p.Start().Hour() != 0 {
		t.Fatal("NewPeriod")
	}
}

func TestFacadeCleaningChain(t *testing.T) {
	_, records, _ := facadeScene(t)
	cleaned, err := cellcars.ReadAll(cellcars.Clean(cellcars.NewSliceReader(records)))
	if err != nil {
		t.Fatal(err)
	}
	if len(cleaned) == 0 || len(cleaned) >= len(records) {
		t.Fatalf("clean chain: %d -> %d", len(records), len(cleaned))
	}
	for _, r := range cleaned {
		if r.Duration > cellcars.TruncateLimit {
			t.Fatalf("record above truncate limit: %v", r.Duration)
		}
		if r.Duration == cellcars.GhostDuration {
			t.Fatal("ghost survived the standard chain")
		}
	}
	ghostFree, err := cellcars.ReadAll(cellcars.RemoveGhosts(cellcars.NewSliceReader(records)))
	if err != nil {
		t.Fatal(err)
	}
	if len(ghostFree) >= len(records) {
		t.Fatal("RemoveGhosts removed nothing")
	}
}

func TestFacadeSortRecords(t *testing.T) {
	_, records, _ := facadeScene(t)
	shuffled := make([]cellcars.Record, len(records))
	copy(shuffled, records)
	// Reverse to unsort.
	for i, j := 0, len(shuffled)-1; i < j; i, j = i+1, j-1 {
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	}
	cellcars.SortRecords(shuffled)
	if !cdr.Sorted(shuffled) {
		t.Fatal("SortRecords did not sort")
	}
}

func TestFacadeAnalyzeAndFormat(t *testing.T) {
	scene, records, ctx := facadeScene(t)
	report, err := cellcars.Analyze(records, ctx, cellcars.AnalyzeOptions{
		RareDays:  []int{2, 5},
		BusyCells: scene.Load.VeryBusyCells(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t1 := cellcars.FormatTable1(report)
	if !strings.Contains(t1, "Monday") || !strings.Contains(t1, "Overall") {
		t.Fatalf("table 1:\n%s", t1)
	}
	t2 := cellcars.FormatTable2(report)
	if !strings.Contains(t2, "Rare") || !strings.Contains(t2, "Common") {
		t.Fatalf("table 2:\n%s", t2)
	}
	t3 := cellcars.FormatTable3(report)
	if !strings.Contains(t3, "C3") || !strings.Contains(t3, "Time(%)") {
		t.Fatalf("table 3:\n%s", t3)
	}
}

func TestFacadeMicroAnalyses(t *testing.T) {
	_, records, ctx := facadeScene(t)
	cleaned, err := cellcars.ReadAll(cellcars.RemoveGhosts(cellcars.NewSliceReader(records)))
	if err != nil {
		t.Fatal(err)
	}
	cell, day := cellcars.BusiestCellDay(cleaned, ctx)
	if cell.IsZero() {
		t.Fatal("no busiest cell")
	}
	cd := cellcars.CellDay(cleaned, ctx, cell, day)
	if cd.UniqueCars == 0 || cd.PeakCars == 0 {
		t.Fatalf("cell day: %+v", cd)
	}
	cw := cellcars.CellWeek(cleaned, ctx, cell, 0)
	if cw.Concurrency.Max() == 0 {
		t.Fatal("cell week has no concurrency")
	}
	car := cleaned[0].Car
	m := cellcars.UsageMatrix(cellcars.RecordsOfCar(cleaned, car), ctx)
	if m.Sum() == 0 {
		t.Fatal("usage matrix empty")
	}
}

func TestFacadeFOTA(t *testing.T) {
	scene, records, ctx := facadeScene(t)
	cleaned, err := cellcars.ReadAll(cellcars.RemoveGhosts(cellcars.NewSliceReader(records)))
	if err != nil {
		t.Fatal(err)
	}
	segments := cellcars.FOTASegments(cleaned, ctx, 2)
	if len(segments) == 0 {
		t.Fatal("no segments")
	}
	base := cellcars.DefaultFOTAConfig(nil)
	base.UpdateMB = 50
	res := cellcars.SimulateFOTA(cleaned, ctx, segments, base)
	if res.Cars == 0 || res.DeliveredMB == 0 {
		t.Fatalf("campaign: %+v", res)
	}
	results := cellcars.CompareFOTA(cleaned, ctx, segments, base,
		cellcars.NaivePolicy{},
		cellcars.SegmentAwarePolicy{BusyThreshold: scene.Load.BusyThreshold()},
	)
	if len(results) != 2 {
		t.Fatalf("results = %d", len(results))
	}
	if results[1].BusyShare() > results[0].BusyShare() {
		t.Fatal("segment-aware should not push more busy bytes than naive")
	}
	out := cellcars.FormatFOTAResults(results)
	if !strings.Contains(out, "naive") || !strings.Contains(out, "segment-aware") {
		t.Fatalf("fota format:\n%s", out)
	}
}

func TestFacadePrediction(t *testing.T) {
	_, records, ctx := facadeScene(t)
	cleaned, err := cellcars.ReadAll(cellcars.RemoveGhosts(cellcars.NewSliceReader(records)))
	if err != nil {
		t.Fatal(err)
	}
	car := cleaned[0].Car
	profile := cellcars.LearnProfile(cellcars.RecordsOfCar(cleaned, car), ctx, 1)
	if profile.Predictability < 0 || profile.Predictability > 1 {
		t.Fatalf("predictability = %v", profile.Predictability)
	}
	outcome := cellcars.BacktestCar(cellcars.RecordsOfCar(cleaned, car), ctx, 1, 1, 0.5)
	if outcome.TruePositive+outcome.FalsePositive+outcome.FalseNegative+outcome.TrueNegative == 0 {
		t.Fatal("empty confusion matrix")
	}
	fleet := cellcars.BacktestFleet(cleaned, ctx, 1, 1, 0.5)
	if fleet.Cars == 0 {
		t.Fatal("no cars in fleet backtest")
	}
	clusters := cellcars.ClusterCars(cleaned, ctx, 1, 3, 7)
	if len(clusters) == 0 {
		t.Fatal("no behavioural clusters")
	}
	total := 0
	for _, c := range clusters {
		total += len(c.Cars)
	}
	if total == 0 {
		t.Fatal("clusters empty")
	}
}

func TestFacadeCodecsViaPublicTypes(t *testing.T) {
	_, records, _ := facadeScene(t)
	sample := records[:100]
	var buf bytes.Buffer
	w := cdr.NewBinaryWriter(&buf)
	for _, r := range sample {
		var rec cellcars.Record = r // public alias interchangeable
		if err := w.Write(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	out, err := cellcars.ReadAll(cdr.NewBinaryReader(&buf))
	if err != nil || len(out) != len(sample) {
		t.Fatalf("round trip: %v, %d records", err, len(out))
	}
}

func TestFacadeStreaming(t *testing.T) {
	_, records, ctx := facadeScene(t)
	s := cellcars.NewStreaming(ctx.Period)
	if err := s.AddAll(cellcars.NewSliceReader(records)); err != nil {
		t.Fatal(err)
	}
	rep := s.Finalize()
	if rep.Records == 0 || rep.Presence.TotalCars == 0 {
		t.Fatalf("stream report empty: %+v", rep.Records)
	}
	// Streaming presence must agree with the batch pipeline.
	batch, err := cellcars.Analyze(records, ctx, cellcars.AnalyzeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Presence.TotalCars != batch.Presence.TotalCars {
		t.Fatalf("cars: stream %d vs batch %d", rep.Presence.TotalCars, batch.Presence.TotalCars)
	}
	if diff := rep.Connected.FullMean - batch.Connected.FullMean; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("full mean: stream %v vs batch %v", rep.Connected.FullMean, batch.Connected.FullMean)
	}
}

// TestFacadeQueryService drives the query surface through the public
// package alone: store, server, window report, and the bit-identity
// with a batch streaming run.
func TestFacadeQueryService(t *testing.T) {
	// Bit-identity between a window fold and a batch run holds under
	// the ordered-merge precondition (per-car chains, no overlap —
	// see internal/analysis/ordered.go), so the workload here is a
	// deterministic chain stream rather than the raw fault-injected
	// scene, whose stuck-teardown records overlap on purpose.
	ctx := cellcars.Context{Period: cellcars.NewPeriod(time.Date(2017, 1, 2, 0, 0, 0, 0, time.UTC), 14), TZOffsetSeconds: -5 * 3600}
	var records []cellcars.Record
	for car := cellcars.CarID(0); car < 60; car++ {
		at := ctx.Period.Start().Add(time.Duration(car) * 7 * time.Minute)
		for i := 0; i < 40; i++ {
			dur := time.Duration(30+int(car)*5+i*11) * time.Second
			records = append(records, cellcars.Record{
				Car:      car,
				Cell:     radio.MakeCellKey(radio.BSID(uint64(car+cellcars.CarID(i))%25), radio.SectorID(i%3), radio.C1),
				Start:    at,
				Duration: dur,
			})
			at = at.Add(dur + time.Duration(10+i*97)*time.Second)
		}
	}
	sort.Slice(records, func(i, j int) bool { return records[i].Start.Before(records[j].Start) })

	store, err := cellcars.NewQueryStore(cellcars.QueryConfig{
		Ctx:     ctx,
		Windows: []cellcars.QueryWindow{{Name: "14d", Span: 14 * 24 * time.Hour}},
		Obs:     cellcars.NewMetricsRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range records {
		store.Add(r)
	}
	served, err := store.Report("full", "14d")
	if err != nil {
		t.Fatal(err)
	}

	s := cellcars.NewStreamingWithOptions(ctx, cellcars.AnalyzeOptions{})
	if err := s.AddAll(cellcars.NewSliceReader(records)); err != nil {
		t.Fatal(err)
	}
	rep := s.Finalize()
	want, err := cellcars.MarshalStreamReport(&rep)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(served, want) {
		t.Fatalf("served window report differs from batch (%d vs %d bytes)", len(served), len(want))
	}

	srv := cellcars.NewQueryServer(store, nil)
	srv.SetReady(true)
	req := httptest.NewRequest("GET", "/report/summary?window=14d", nil)
	rr := httptest.NewRecorder()
	srv.ServeHTTP(rr, req)
	if rr.Code != 200 || !strings.Contains(rr.Body.String(), "\"records\"") {
		t.Fatalf("/report/summary: %d %s", rr.Code, rr.Body.String())
	}
	if len(cellcars.DefaultQueryWindows()) != 3 {
		t.Fatal("DefaultQueryWindows should offer 24h/7d/90d")
	}
}

// TestFacadeServiceObservability exercises the service-observability
// exports: structured logger, request instrumentation, and health
// rules driving a degraded readiness body.
func TestFacadeServiceObservability(t *testing.T) {
	var logs bytes.Buffer
	runID := cellcars.NewRunID()
	if len(runID) != 16 {
		t.Fatalf("run id %q is not 16 hex chars", runID)
	}
	logger := cellcars.NewServiceLogger(&logs, "facadetest", runID)

	reg := cellcars.NewMetricsRegistry()
	h := cellcars.InstrumentHandler(
		http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) { w.Write([]byte("ok")) }),
		reg, logger,
		func(r *http.Request) (string, string) { return "probe", "-" },
	)
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/x", nil))
	if rr.Code != 200 {
		t.Fatalf("instrumented handler: %d", rr.Code)
	}
	var rec map[string]any
	if err := json.Unmarshal(logs.Bytes(), &rec); err != nil {
		t.Fatalf("log line is not JSON: %q: %v", logs.String(), err)
	}
	if rec["component"] != "facadetest" || rec["run_id"] != runID || rec["request_id"] == "" {
		t.Fatalf("log record missing correlation fields: %v", rec)
	}
	var metrics bytes.Buffer
	reg.WritePrometheus(&metrics)
	if !strings.Contains(metrics.String(), `cellcars_http_responses_total{class="2xx",endpoint="probe"}`) {
		t.Fatalf("no response counter in:\n%s", metrics.String())
	}

	health := cellcars.NewHealthRules(reg)
	stalled := true
	health.Rule("stalled", func() (bool, string) {
		if stalled {
			return false, "it is stuck"
		}
		return true, ""
	})
	if failing := cellcars.FailingHealthRules(health.Eval()); len(failing) == 0 {
		t.Fatal("failing rule not reported")
	}
	stalled = false
	if failing := cellcars.FailingHealthRules(health.Eval()); len(failing) != 0 {
		t.Fatalf("recovered rule still failing: %v", failing)
	}
}
