// Package cellcars is a toolkit for studying connected-car behaviour
// in cellular networks, reproducing the measurement pipeline of
// "Connected cars in cellular network: A measurement study"
// (Andrade et al., IMC 2017).
//
// The package has two halves:
//
//   - A measurement pipeline (cleaning, sessionization, and every
//     analysis of the paper's §4) that consumes Call Detail Records —
//     radio-level connection logs — plus a per-cell PRB-utilization
//     source. Point it at real CDRs and counters if you have them.
//
//   - A calibrated synthetic data generator (geography, radio
//     topology, PRB load model, car fleet, mobility, RRC connection
//     model, fault injection) standing in for the paper's closed
//     production data set.
//
// This root package re-exports the stable public surface; the
// subsystem implementations live under internal/. See DESIGN.md for
// the system inventory and EXPERIMENTS.md for paper-vs-measured
// results.
//
// # Quick start
//
//	scene := cellcars.NewScene(cellcars.DefaultSceneConfig(2000))
//	records, _, err := scene.GenerateAll()
//	if err != nil { ... }
//	report, err := cellcars.Analyze(records, cellcars.AnalysisContext(scene), cellcars.AnalyzeOptions{
//		BusyCells: scene.Load.VeryBusyCells(),
//	})
package cellcars

import (
	"io"
	"log/slog"
	"net/http"
	"time"

	"cellcars/internal/analysis"
	"cellcars/internal/cdr"
	"cellcars/internal/clean"
	"cellcars/internal/fleet"
	"cellcars/internal/load"
	"cellcars/internal/obs"
	"cellcars/internal/query"
	"cellcars/internal/radio"
	"cellcars/internal/simtime"
	"cellcars/internal/snapshot"
	"cellcars/internal/synth"
)

// Core record and identity types.
type (
	// Record is one radio-level connection event (one CDR row).
	Record = cdr.Record
	// CarID is an anonymized car identifier.
	CarID = cdr.CarID
	// CellKey identifies one cell: (base station, sector, carrier).
	CellKey = radio.CellKey
	// CarrierID names one of the five carriers C1–C5.
	CarrierID = radio.CarrierID
	// HandoverKind classifies a transition between consecutive cells.
	HandoverKind = radio.HandoverKind
	// Period is a fixed study window.
	Period = simtime.Period
	// WeekMatrix is a 24×7 hour-of-week accumulation matrix (Fig 4/5).
	WeekMatrix = simtime.WeekMatrix
)

// Streaming CDR I/O.
type (
	// Reader streams CDR records; Read returns io.EOF at the end.
	Reader = cdr.Reader
	// Writer consumes CDR records.
	Writer = cdr.Writer
)

// Scene generation.
type (
	// SceneConfig parameterizes the synthetic world and generator.
	SceneConfig = synth.Config
	// Scene is an assembled synthetic world (network, load, fleet).
	Scene = synth.World
	// GenStats summarizes a generation run.
	GenStats = synth.Stats
	// Car is one vehicle of the synthetic fleet.
	Car = fleet.Car
)

// Analysis.
type (
	// Context carries the study period, load source and timezone into
	// analyses.
	Context = analysis.Context
	// Report bundles every §4 analysis over one data set.
	Report = analysis.Report
	// AnalyzeOptions tunes a full pipeline run.
	AnalyzeOptions = analysis.RunOptions
	// LoadSource provides per-cell PRB utilization per 15-minute bin.
	LoadSource = load.Source
	// LoadModel is the synthetic PRB utilization model.
	LoadModel = load.Model
)

// Preprocessing constants from the paper (§3).
const (
	// GhostDuration marks erroneous exactly-one-hour records.
	GhostDuration = clean.GhostDuration
	// TruncateLimit caps per-cell connection durations (600 s).
	TruncateLimit = clean.TruncateLimit
	// AggregateGap concatenates connections into aggregate sessions (30 s).
	AggregateGap = clean.AggregateGap
	// MobilityGap concatenates connections into mobility sessions (10 min).
	MobilityGap = clean.MobilityGap
)

// DefaultSceneConfig returns the calibrated generator configuration
// for a fleet of the given size over the paper's 90-day window.
func DefaultSceneConfig(numCars int) SceneConfig {
	return synth.DefaultConfig(numCars)
}

// NewScene assembles a synthetic world from the config. Construction
// and generation are fully deterministic in cfg.Seed.
func NewScene(cfg SceneConfig) *Scene {
	return synth.NewWorld(cfg)
}

// AnalysisContext builds the analysis context matching a scene: its
// study period, PRB load model, and the fleet's local-time offset.
func AnalysisContext(s *Scene) Context {
	tz := -5 * 3600
	if len(s.Cars) > 0 {
		tz = s.Cars[0].TZOffsetSeconds
	}
	return Context{Period: s.Config.Period, Load: s.Load, TZOffsetSeconds: tz}
}

// Analyze runs the complete measurement pipeline (§3 cleaning plus
// every §4 analysis) over a raw record stream. It is a thin adapter
// over the sharded accumulator engine: set AnalyzeOptions.Workers to
// parallelize (the report is bit-identical for any worker count).
func Analyze(records []Record, ctx Context, opts AnalyzeOptions) (*Report, error) {
	return analysis.Run(records, ctx, opts)
}

// The sharded analysis engine: every §4 analysis expressed as a
// mergeable accumulator, run over car-disjoint shards in parallel.
type (
	// Engine shards records by car across workers and merges the
	// per-shard partial results into one Report.
	Engine = analysis.Engine
	// EngineOptions extends AnalyzeOptions with the worker count.
	EngineOptions = analysis.EngineOptions
)

// NewEngine builds a sharded analysis engine. Workers <= 1 runs
// sequentially; any worker count yields a bit-identical Report.
func NewEngine(ctx Context, opts EngineOptions) *Engine {
	return analysis.NewEngine(ctx, opts)
}

// Streaming analysis for data sets too large for memory.
type (
	// StreamingAnalyzer is a single-pass bounded-memory accumulator for
	// the record-level analyses.
	StreamingAnalyzer = analysis.Streaming
	// StreamReport is its Finalize output.
	StreamReport = analysis.StreamReport
)

// NewStreaming returns an empty streaming accumulator over the period.
func NewStreaming(period Period) *StreamingAnalyzer {
	return analysis.NewStreaming(period)
}

// NewStreamingWithContext returns a streaming accumulator with a full
// analysis context; with a load source it additionally covers the
// busy-cell analyses (Table 2, Figure 7).
func NewStreamingWithContext(ctx Context) *StreamingAnalyzer {
	return analysis.NewStreamingWithContext(ctx)
}

// NewStreamingWithOptions additionally pins the analysis options
// (seed, rare-day thresholds) — required when the resulting state will
// be snapshotted and merged with partials from other shards, since
// snapshots are only mergeable under identical options.
func NewStreamingWithOptions(ctx Context, opts AnalyzeOptions) *StreamingAnalyzer {
	return analysis.NewStreamingWithOptions(ctx, opts)
}

// Durable and distributed analysis: every accumulator serializes its
// partial state into a versioned snapshot (internal/snapshot codec),
// enabling crash-resumable runs and map-reduce over car-disjoint
// shards. See DESIGN.md, "Snapshots".
type (
	// Partial is restored mid-run analysis state: mergeable with other
	// partials from the same study, finalizable into a Report.
	Partial = analysis.Partial
	// SnapshotHeader is the study configuration and progress watermark
	// stored in every snapshot.
	SnapshotHeader = analysis.SnapshotHeader
	// CheckpointConfig configures periodic state snapshots of a run.
	CheckpointConfig = analysis.CheckpointConfig
)

// ErrCheckpointStop reports that a checkpointed run stopped on its
// trigger after saving state, rather than reaching end of input.
var ErrCheckpointStop = analysis.ErrCheckpointStop

// ErrBadSnapshot is wrapped by every snapshot decode failure:
// truncation, corruption, version or configuration mismatch.
var ErrBadSnapshot = snapshot.ErrBadSnapshot

// ReadPartial restores partial analysis state from a snapshot stream.
func ReadPartial(r io.Reader) (*Partial, error) { return analysis.ReadPartial(r) }

// ReadPartialFile restores partial analysis state from a snapshot file.
func ReadPartialFile(path string) (*Partial, error) { return analysis.ReadPartialFile(path) }

// ResumeStreaming restores a streaming accumulator from a checkpoint
// written under the same context and options; the caller must skip the
// input past the restored Watermark (SkipRecords) before adding more.
func ResumeStreaming(ctx Context, opts AnalyzeOptions, path string) (*StreamingAnalyzer, error) {
	return analysis.ResumeStreaming(ctx, opts, path)
}

// RestoreStreaming restores a streaming accumulator from a checkpoint
// stream (the io.Reader form of ResumeStreaming, for state that does
// not live in a file — embedded snapshot frames, network transfers).
func RestoreStreaming(ctx Context, opts AnalyzeOptions, r io.Reader) (*StreamingAnalyzer, error) {
	return analysis.RestoreStreaming(ctx, opts, r)
}

// SkipRecords advances a reader past n records — the resume seek.
func SkipRecords(r Reader, n int64) error { return cdr.Skip(r, n) }

// The always-on query service (cmd/carqueryd): continuous ingest into
// time-bucketed accumulator sets, rolling-window reports served over
// HTTP/JSON, cached per (endpoint, window), durable via rotated
// consistent cuts. A served window report is bit-identical to a batch
// Analyze/Streaming run over the same records. See DESIGN.md §8.
type (
	// QueryStore buckets ingested records and folds rolling windows.
	QueryStore = query.Store
	// QueryConfig configures the store: study context, bucket width,
	// windows, snapshot directory, metrics registry.
	QueryConfig = query.Config
	// QueryWindow names one rolling window span.
	QueryWindow = query.Window
	// QueryServer is the HTTP face of a QueryStore.
	QueryServer = query.Server
	// SnapshotDir is a directory of rotated, atomically-written
	// snapshot cuts with torn-cut-skipping restore.
	SnapshotDir = snapshot.Dir
)

// NewQueryStore builds a query store; it validates that the bucket
// width divides the study period and every window is a whole number of
// buckets.
func NewQueryStore(cfg QueryConfig) (*QueryStore, error) { return query.New(cfg) }

// NewQueryServer mounts a store's HTTP surface: /report/<endpoint>,
// /windows, /stats, /healthz, /readyz, plus /metrics and /debug when
// reg is non-nil.
func NewQueryServer(store *QueryStore, reg *MetricsRegistry) *QueryServer {
	return query.NewServer(store, reg)
}

// DefaultQueryWindows returns the 24h/7d/90d rolling windows.
func DefaultQueryWindows() []QueryWindow { return query.DefaultWindows() }

// MarshalStreamReport renders a report exactly as the query service's
// /report/full endpoint (and caranalyze -json) serves it, making
// served and batch answers comparable byte for byte.
func MarshalStreamReport(rep *StreamReport) ([]byte, error) { return query.MarshalReport(rep) }

// MetricsRegistry is the stdlib-only labeled metrics registry behind
// the CLIs' -debug-addr and the query service's /metrics.
type MetricsRegistry = obs.Registry

// NewMetricsRegistry returns an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.New() }

// HealthRules is the named-rule readiness evaluator behind a degraded
// /readyz: each failing rule is listed in the probe body and raises
// cellcars_health_rule_failing{rule=...}.
type HealthRules = obs.Health

// NewHealthRules returns an empty rule set reporting into reg (nil:
// metrics off).
func NewHealthRules(reg *MetricsRegistry) *HealthRules { return obs.NewHealth(reg) }

// HealthRuleResult is one rule's evaluation outcome.
type HealthRuleResult = obs.RuleResult

// FailingHealthRules filters an Eval result down to the failing rules.
func FailingHealthRules(results []HealthRuleResult) []HealthRuleResult {
	return obs.Failing(results)
}

// NewServiceLogger returns a structured JSON logger whose every record
// carries the component name and a run id — the logging contract both
// daemons follow.
func NewServiceLogger(w io.Writer, component, runID string) *slog.Logger {
	return obs.NewLogger(w, component, runID)
}

// NewRunID returns a random 64-bit hex id correlating all records of
// one process run.
func NewRunID() string { return obs.NewRunID() }

// InstrumentHandler wraps an HTTP handler with request telemetry:
// per-(endpoint,window) latency, status-class counters, an in-flight
// gauge, request-id propagation, and one structured record per
// request. endpoint maps a request to low-cardinality labels.
func InstrumentHandler(next http.Handler, reg *MetricsRegistry, logger *slog.Logger, endpoint func(*http.Request) (string, string)) http.Handler {
	return obs.Instrument(next, reg, logger, endpoint)
}

// ShardOfCar maps a car to one of n shards; partials over car-disjoint
// shards merge into exactly the single-process result.
func ShardOfCar(car CarID, n int) int { return cdr.ShardOfCar(car, n) }

// DefaultPeriod returns the 90-day study window used throughout the
// reproduction.
func DefaultPeriod() Period { return simtime.DefaultPeriod() }

// NewPeriod returns a study window of the given number of days
// starting at midnight UTC on the day containing start.
func NewPeriod(start time.Time, days int) Period { return simtime.NewPeriod(start, days) }

// NewSliceReader streams records from an in-memory slice.
func NewSliceReader(records []Record) Reader { return cdr.NewSliceReader(records) }

// Micro-level analysis results (Figures 8, 10, 11).
type (
	// CellDayResult is Figure 8: one cell's connections over 24 hours.
	CellDayResult = analysis.CellDayResult
	// CellWeekResult is Figure 10: concurrency vs load over one week.
	CellWeekResult = analysis.CellWeekResult
	// BusyClusters is Figure 11: k-means clusters over busy cells.
	BusyClusters = analysis.BusyClusters
)

// CellDay computes Figure 8 for one cell and study day.
func CellDay(records []Record, ctx Context, cell CellKey, day int) CellDayResult {
	return analysis.CellDay(records, ctx, cell, day)
}

// CellWeek computes Figure 10 for one cell and Monday-aligned week.
func CellWeek(records []Record, ctx Context, cell CellKey, week int) CellWeekResult {
	return analysis.CellWeek(records, ctx, cell, week)
}

// BusiestCellDay finds the (cell, day) with the most distinct cars — a
// natural Figure 8 exhibit.
func BusiestCellDay(records []Record, ctx Context) (CellKey, int) {
	return analysis.BusiestCellDay(records, ctx)
}

// UsageMatrix builds one car's 24×7 session matrix (Figure 5).
func UsageMatrix(records []Record, ctx Context) WeekMatrix {
	return analysis.UsageMatrix(records, ctx)
}

// RecordsOfCar extracts one car's records from a stream.
func RecordsOfCar(records []Record, car CarID) []Record {
	return analysis.RecordsOfCar(records, car)
}

// Clean applies the paper's standard §3 preprocessing chain (ghost
// removal, then 600-second truncation) to a record stream.
func Clean(r Reader) Reader { return clean.Standard(r) }

// RemoveGhosts filters out the erroneous exactly-one-hour records.
func RemoveGhosts(r Reader) Reader { return clean.RemoveGhosts(r) }

// ReadAll drains a reader into memory.
func ReadAll(r Reader) ([]Record, error) { return cdr.ReadAll(r) }

// SortRecords orders records by (start, car, cell).
func SortRecords(records []Record) { cdr.Sort(records) }
