package cellcars

import (
	"math/rand/v2"

	"cellcars/internal/predict"
)

// Appearance prediction (the per-car models §4.7 calls for).
type (
	// CarProfile is a car's learned weekly appearance profile with a
	// predictability score in [0, 1].
	CarProfile = predict.Profile
	// PredictOutcome is a backtest confusion matrix.
	PredictOutcome = predict.Outcome
	// FleetPrediction aggregates a population backtest, split by
	// predictability quartile.
	FleetPrediction = predict.FleetResult
	// CarCluster is one behavioural group from profile clustering.
	CarCluster = predict.CarCluster
)

// LearnProfile builds a car's weekly appearance profile from its
// records over the first trainWeeks of the period.
func LearnProfile(records []Record, ctx Context, trainWeeks int) CarProfile {
	return predict.Learn(records, ctx.Period, ctx.TZOffsetSeconds, trainWeeks)
}

// BacktestCar trains on the first trainWeeks and scores hourly
// presence prediction over the following evalWeeks at the given
// frequency threshold.
func BacktestCar(records []Record, ctx Context, trainWeeks, evalWeeks int, threshold float64) PredictOutcome {
	return predict.Backtest(records, ctx.Period, ctx.TZOffsetSeconds, trainWeeks, evalWeeks, threshold)
}

// BacktestFleet runs BacktestCar for every car in the stream and
// aggregates by predictability quartile.
func BacktestFleet(records []Record, ctx Context, trainWeeks, evalWeeks int, threshold float64) FleetPrediction {
	return predict.BacktestFleet(records, ctx.Period, ctx.TZOffsetSeconds, trainWeeks, evalWeeks, threshold)
}

// ClusterCars groups cars by their weekly appearance profiles with
// k-means (the behavioural clustering promised in the paper's
// introduction). seed drives k-means++ initialization.
func ClusterCars(records []Record, ctx Context, trainWeeks, k int, seed uint64) []CarCluster {
	rng := rand.New(rand.NewPCG(seed, 0xC1A5))
	return predict.ClusterCars(records, ctx.Period, ctx.TZOffsetSeconds, trainWeeks, k, rng)
}
