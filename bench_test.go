// Benchmark harness: one benchmark per table and figure in the paper's
// evaluation, each printing the regenerated headline numbers next to
// the paper's values (marked "paper:") so `go test -bench=.` produces
// a full reproduction report, recorded in EXPERIMENTS.md.
//
// The shared scene is built once: 1200 cars over the full 90-day
// window on the default 60 km world, seed 1.
package cellcars_test

import (
	"fmt"
	"io"
	"math/rand/v2"
	"sync"
	"testing"
	"time"

	"cellcars"
	"cellcars/internal/analysis"
	"cellcars/internal/cdr"
	"cellcars/internal/clean"
	"cellcars/internal/fota"
	"cellcars/internal/load"
	"cellcars/internal/predict"
	"cellcars/internal/radio"
	"cellcars/internal/simtime"
)

const benchCars = 1200

var benchState struct {
	once    sync.Once
	scene   *cellcars.Scene
	records []cdr.Record // raw, sorted
	clean   []cdr.Record // ghost-free
	ctx     analysis.Context
}

func benchScene(b *testing.B) (*cellcars.Scene, []cdr.Record, []cdr.Record, analysis.Context) {
	b.Helper()
	benchState.once.Do(func() {
		cfg := cellcars.DefaultSceneConfig(benchCars)
		cfg.Seed = 1
		scene := cellcars.NewScene(cfg)
		records, _, err := scene.GenerateAll()
		if err != nil {
			b.Fatalf("generate: %v", err)
		}
		cleaned, err := cdr.ReadAll(clean.RemoveGhosts(cdr.NewSliceReader(records)))
		if err != nil {
			b.Fatalf("clean: %v", err)
		}
		benchState.scene = scene
		benchState.records = records
		benchState.clean = cleaned
		benchState.ctx = cellcars.AnalysisContext(scene)
		fmt.Printf("# bench scene: %d cars, %d days, %d raw records, %d stations, %d cells\n",
			benchCars, cfg.Period.Days(), len(records), scene.Net.NumStations(), scene.Net.NumCells())
	})
	return benchState.scene, benchState.records, benchState.clean, benchState.ctx
}

var printOnce sync.Map

// reportOnce prints a reproduction line the first time a benchmark
// runs, keyed by experiment id, so repeated b.N iterations stay quiet.
func reportOnce(id, line string) {
	if _, loaded := printOnce.LoadOrStore(id, true); !loaded {
		fmt.Printf("# %s: %s\n", id, line)
	}
}

// BenchmarkFigure1Saturation regenerates Figure 1: a greedy download
// pinning two cells near 100% PRB utilization from 20:45 for 4 hours.
// Paper: test curves at ~100% while average curves stay diurnal.
func BenchmarkFigure1Saturation(b *testing.B) {
	scene, _, _, _ := benchScene(b)
	cells := scene.Net.AllCells()[:2]
	var res load.SaturationResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res = load.Saturate(scene.Load, cells, 45, 20*time.Hour+45*time.Minute, 4*time.Hour, 0.97)
	}
	b.StopTimer()
	avg := 0.0
	for _, v := range res.Average[0] {
		avg += v
	}
	avg /= float64(simtime.BinsPerDay)
	reportOnce("Figure 1",
		fmt.Sprintf("test-window utilization %.1f%% / %.1f%% (paper: ~100%%), day-average reference %.1f%%",
			res.PeakTestUtilization(0)*100, res.PeakTestUtilization(1)*100, avg*100))
	b.ReportMetric(res.PeakTestUtilization(0)*100, "peak-%")
}

// BenchmarkFigure2DailyPresence regenerates Figure 2. Paper: ~76% of
// cars and ~66% of cells per day, weekend dips, slow upward trend with
// tiny R² (0.033 cars / 0.001 cells).
func BenchmarkFigure2DailyPresence(b *testing.B) {
	_, _, cleaned, ctx := benchScene(b)
	var p analysis.DailyPresence
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p = analysis.DailyPresenceOf(cleaned, ctx.Period)
	}
	b.StopTimer()
	meanCars, meanCells := mean(p.CarsFrac), mean(p.CellsFrac)
	reportOnce("Figure 2",
		fmt.Sprintf("cars/day %.1f%% (paper 76.0%%), cells/day %.1f%% (paper 65.8%%), trends R²=%.3f/%.3f (paper 0.033/0.001)",
			meanCars*100, meanCells*100, p.CarsTrend.R2, p.CellsTrend.R2))
	b.ReportMetric(meanCars*100, "cars-%")
}

// BenchmarkTable1WeekdayPresence regenerates Table 1. Paper: Mon-Thu
// 78-80% cars, Sat 70.3%, Sun 67.4%, overall 76.0%.
func BenchmarkTable1WeekdayPresence(b *testing.B) {
	_, _, cleaned, ctx := benchScene(b)
	var rows []analysis.WeekdayRow
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := analysis.DailyPresenceOf(cleaned, ctx.Period)
		rows = analysis.Table1(p, ctx.Period)
	}
	b.StopTimer()
	reportOnce("Table 1",
		fmt.Sprintf("cars Mon %.1f%% Fri %.1f%% Sat %.1f%% Sun %.1f%% overall %.1f%% (paper 78.1/78.0/70.3/67.4/76.0)",
			rows[0].CarsMean*100, rows[4].CarsMean*100, rows[5].CarsMean*100,
			rows[6].CarsMean*100, rows[7].CarsMean*100))
	b.ReportMetric(rows[7].CarsMean*100, "overall-%")
}

// BenchmarkFigure3ConnectedTime regenerates Figure 3. Paper: mean 8%
// full / 4% truncated of the study period; p99.5 = 27% / 15%.
func BenchmarkFigure3ConnectedTime(b *testing.B) {
	_, _, cleaned, ctx := benchScene(b)
	var ct analysis.ConnectedTime
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ct = analysis.ConnectedTimeOf(cleaned, ctx.Period)
	}
	b.StopTimer()
	reportOnce("Figure 3",
		fmt.Sprintf("mean full %.1f%% / trunc %.1f%% (paper 8/4); p99.5 %.1f%%/%.1f%% (paper 27/15)",
			ct.FullMean*100, ct.TruncMean*100, ct.FullP995*100, ct.TruncP995*100))
	b.ReportMetric(ct.TruncMean*100, "trunc-mean-%")
}

// BenchmarkFigure4ReferenceMatrices regenerates the Figure 4 period
// encodings (static reference data).
func BenchmarkFigure4ReferenceMatrices(b *testing.B) {
	var total float64
	for i := 0; i < b.N; i++ {
		commute, peak, weekend := analysis.ReferenceMatrices()
		total = commute.Sum() + peak.Sum() + weekend.Sum()
	}
	reportOnce("Figure 4",
		fmt.Sprintf("commute/peak/weekend matrices encode %d significant hour-cells", int(total)))
}

// BenchmarkFigure5UsageMatrices regenerates three per-car 24×7 usage
// matrices. Paper: three qualitatively distinct weekly patterns.
func BenchmarkFigure5UsageMatrices(b *testing.B) {
	scene, _, cleaned, ctx := benchScene(b)
	// One car per paper panel: busy-hour commuter, heavy, early commuter.
	carIDs := carsOfArchetypes(scene, 2, 0, 1)
	var active int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		active = 0
		for _, id := range carIDs {
			m := analysis.UsageMatrix(analysis.RecordsOfCar(cleaned, id), ctx)
			active += m.ActiveCells(0)
		}
	}
	b.StopTimer()
	reportOnce("Figure 5",
		fmt.Sprintf("3 sample cars (heavy, commuter-busy, commuter-early) touch %d distinct week-hours total", active))
}

// BenchmarkFigure6DaysHistogram regenerates Figure 6. Paper: sharp
// drop-off below 10 days, rising trend past 30, most cars near 90.
func BenchmarkFigure6DaysHistogram(b *testing.B) {
	_, _, cleaned, ctx := benchScene(b)
	var low10, upTo30, over60 int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := analysis.DaysHistogram(cleaned, ctx.Period)
		low10, upTo30, over60 = 0, 0, 0
		for d, c := range h.Counts {
			switch {
			case d < 10:
				low10 += c
			case d < 30:
				upTo30 += c
			}
			if d >= 60 {
				over60 += c
			}
		}
	}
	b.StopTimer()
	total := float64(low10 + upTo30 + over60)
	_ = total
	reportOnce("Figure 6",
		fmt.Sprintf("cars on <10 days: %d, 10-29 days: %d, 60+ days: %d of %d (paper: drop below 10, rise past 30)",
			low10, upTo30, over60, benchCars))
}

// BenchmarkTable2Segmentation regenerates Table 2. Paper: rare(≤10)
// 2.2% / common 97.8%; rare(≤30) 9.9% / common 90.1%; busy column
// small (0.4-1.3%).
func BenchmarkTable2Segmentation(b *testing.B) {
	_, _, cleaned, ctx := benchScene(b)
	var segs []analysis.Segment
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		segs = analysis.Segmentation(cleaned, ctx, 10, 30)
	}
	b.StopTimer()
	reportOnce("Table 2",
		fmt.Sprintf("rare≤10 %.1f%% (paper 2.2), rare≤30 %.1f%% (paper 9.9), busy %.1f%% (paper 1.7), both %.1f%% (paper 38.4)",
			segs[0].RareTotal()*100, segs[1].RareTotal()*100,
			(segs[0].RareBusy+segs[0].CommonBusy)*100,
			(segs[0].RareBoth+segs[0].CommonBoth)*100))
	b.ReportMetric(segs[0].RareTotal()*100, "rare10-%")
}

// BenchmarkFigure7BusyTime regenerates Figure 7. Paper: ~2.4% of cars
// spend >50% of connected time on busy radios; ~1% spend ~all of it.
func BenchmarkFigure7BusyTime(b *testing.B) {
	_, _, cleaned, ctx := benchScene(b)
	var bt analysis.BusyTime
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bt = analysis.BusyTimeOf(cleaned, ctx)
	}
	b.StopTimer()
	reportOnce("Figure 7",
		fmt.Sprintf("median busy share %.1f%%, >50%% busy: %.2f%% of cars (paper 2.4), ~100%%: %.2f%% (paper ~1)",
			bt.Deciles[5]*100, bt.OverHalf*100, bt.AllBusy*100))
	b.ReportMetric(bt.OverHalf*100, "over50-%")
}

// BenchmarkFigure8CellDay regenerates Figure 8: the busiest cell-day.
// Paper example: 377 cars over 24 h with a 16-car peak 15-minute bin.
func BenchmarkFigure8CellDay(b *testing.B) {
	_, _, cleaned, ctx := benchScene(b)
	cell, day := analysis.BusiestCellDay(cleaned, ctx)
	var cd analysis.CellDayResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cd = analysis.CellDay(cleaned, ctx, cell, day)
	}
	b.StopTimer()
	reportOnce("Figure 8",
		fmt.Sprintf("busiest cell-day %v day %d: %d cars, peak concurrency %d (paper example: 377 cars, peak 16; scales with fleet %d vs 1M)",
			cell, day, cd.UniqueCars, cd.PeakCars, benchCars))
	b.ReportMetric(float64(cd.UniqueCars), "cars")
}

// BenchmarkFigure9CellDurations regenerates Figure 9. Paper: median
// 105 s, 73rd percentile at 600 s, mean 625 s full / 238 s truncated.
func BenchmarkFigure9CellDurations(b *testing.B) {
	_, _, cleaned, _ := benchScene(b)
	var cd analysis.CellDurations
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cd = analysis.CellDurationsOf(cleaned)
	}
	b.StopTimer()
	reportOnce("Figure 9",
		fmt.Sprintf("median %.0f s (paper 105), p73 %.0f s (paper 600), mean full %.0f s (paper 625) / trunc %.0f s (paper 238)",
			cd.Median, cd.P73, cd.FullMean, cd.TruncMean))
	b.ReportMetric(cd.Median, "median-s")
}

// BenchmarkFigure10CellWeek regenerates Figure 10: concurrency
// impulses against the load curve for a busy cell over one week.
func BenchmarkFigure10CellWeek(b *testing.B) {
	scene, _, cleaned, ctx := benchScene(b)
	busy := scene.Load.VeryBusyCells()
	if len(busy) == 0 {
		b.Skip("no very busy cells")
	}
	var cw analysis.CellWeekResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cw = analysis.CellWeek(cleaned, ctx, busy[0], 0)
	}
	b.StopTimer()
	reportOnce("Figure 10",
		fmt.Sprintf("cell %v: peak concurrency %.0f cars, mean UPRB %.0f%% (paper: diurnal impulses tracking the load curve)",
			cw.Cell, cw.Concurrency.Max(), cw.Utilization.Mean()*100))
}

// BenchmarkFigure11Clustering regenerates Figure 11: k-means (k=2)
// over busy-cell concurrency vectors. Paper: cluster 2 ~5× the
// concurrency of cluster 1; cluster 1 ~4× more cells.
func BenchmarkFigure11Clustering(b *testing.B) {
	scene, _, cleaned, ctx := benchScene(b)
	busy := scene.Load.VeryBusyCells()
	if len(busy) < 2 {
		b.Skip("too few very busy cells")
	}
	var cl analysis.BusyClusters
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cl = clusterOnce(cleaned, ctx, busy)
	}
	b.StopTimer()
	sizeRatio := 0.0
	if cl.Sizes[1] > 0 {
		sizeRatio = float64(cl.Sizes[0]) / float64(cl.Sizes[1])
	}
	reportOnce("Figure 11",
		fmt.Sprintf("%d busy cells → clusters %v (size ratio %.1fx, paper 4x), peak ratio %.1fx (paper ~5x)",
			len(busy), cl.Sizes, sizeRatio, cl.PeakRatio()))
	b.ReportMetric(cl.PeakRatio(), "peak-ratio")
}

// BenchmarkSec45Handovers regenerates §4.5. Paper: median 2, p70 4,
// p90 9 handovers per mobility session; inter-BS dominant.
func BenchmarkSec45Handovers(b *testing.B) {
	_, _, cleaned, _ := benchScene(b)
	truncated, err := cdr.ReadAll(clean.Truncate(cdr.NewSliceReader(cleaned), clean.TruncateLimit))
	if err != nil {
		b.Fatal(err)
	}
	var hs analysis.HandoverStats
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hs, err = analysis.HandoversOf(truncated)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	reportOnce("Sec 4.5",
		fmt.Sprintf("handovers median %.0f p70 %.0f p90 %.0f (paper 2/4/9), inter-BS %.1f%% (paper: dominant)",
			hs.Median, hs.P70, hs.P90, hs.InterBSShare()*100))
	b.ReportMetric(hs.Median, "median")
}

// BenchmarkTable3CarrierUsage regenerates Table 3. Paper: cars-ever
// 98.7/89.2/98.7/80.8/0.006 %, time 18.6/7.4/51.9/22.1/0.0 %.
func BenchmarkTable3CarrierUsage(b *testing.B) {
	_, _, cleaned, _ := benchScene(b)
	var u analysis.CarrierUsage
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u = analysis.CarrierUsageOf(cleaned)
	}
	b.StopTimer()
	reportOnce("Table 3",
		fmt.Sprintf("cars%% C1-C5: %.1f/%.1f/%.1f/%.1f/%.3f (paper 98.7/89.2/98.7/80.8/0.006); time%%: %.1f/%.1f/%.1f/%.1f/%.3f (paper 18.6/7.4/51.9/22.1/0)",
			u.CarsFrac[radio.C1]*100, u.CarsFrac[radio.C2]*100, u.CarsFrac[radio.C3]*100,
			u.CarsFrac[radio.C4]*100, u.CarsFrac[radio.C5]*100,
			u.TimeFrac[radio.C1]*100, u.TimeFrac[radio.C2]*100, u.TimeFrac[radio.C3]*100,
			u.TimeFrac[radio.C4]*100, u.TimeFrac[radio.C5]*100))
	b.ReportMetric(u.TimeFrac[radio.C3]*100, "C3-time-%")
}

// clusterOnce runs the Figure 11 clustering with a fixed seed.
func clusterOnce(records []cdr.Record, ctx analysis.Context, busy []radio.CellKey) analysis.BusyClusters {
	rng := rand.New(rand.NewPCG(1, 0xF16))
	return analysis.ClusterBusyCells(records, ctx, busy, rng)
}

// carsOfArchetypes picks one car id per requested archetype index.
func carsOfArchetypes(scene *cellcars.Scene, wants ...int) []cdr.CarID {
	var out []cdr.CarID
	for _, want := range wants {
		for i := range scene.Cars {
			if int(scene.Cars[i].Archetype) == want {
				out = append(out, cdr.CarID(scene.Cars[i].ID))
				break
			}
		}
	}
	return out
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// BenchmarkGeneratorThroughput measures end-to-end CDR generation rate
// on a small scene (records/sec scales linearly with fleet-days).
func BenchmarkGeneratorThroughput(b *testing.B) {
	cfg := cellcars.DefaultSceneConfig(100)
	cfg.Period = simtime.NewPeriod(time.Date(2017, 1, 2, 0, 0, 0, 0, time.UTC), 7)
	var n int64
	for i := 0; i < b.N; i++ {
		scene := cellcars.NewScene(cfg)
		records, _, err := scene.GenerateAll()
		if err != nil {
			b.Fatal(err)
		}
		n = int64(len(records))
	}
	b.ReportMetric(float64(n), "records/op")
}

// BenchmarkBinaryCodec measures binary CDR encode+decode throughput.
func BenchmarkBinaryCodec(b *testing.B) {
	_, _, cleaned, _ := benchScene(b)
	sample := cleaned
	if len(sample) > 100000 {
		sample = sample[:100000]
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf writerBuffer
		w := cdr.NewBinaryWriter(&buf)
		if err := cdr.WriteAll(w, sample); err != nil {
			b.Fatal(err)
		}
		if err := w.Close(); err != nil {
			b.Fatal(err)
		}
		out, err := cdr.ReadAll(cdr.NewBinaryReader(&buf))
		if err != nil || len(out) != len(sample) {
			b.Fatalf("round trip: %v (%d records)", err, len(out))
		}
	}
	b.SetBytes(int64(len(sample)) * 28)
}

// BenchmarkCSVCodec measures CSV CDR encode+decode throughput.
func BenchmarkCSVCodec(b *testing.B) {
	_, _, cleaned, _ := benchScene(b)
	sample := cleaned
	if len(sample) > 50000 {
		sample = sample[:50000]
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf writerBuffer
		w := cdr.NewCSVWriter(&buf)
		if err := cdr.WriteAll(w, sample); err != nil {
			b.Fatal(err)
		}
		if err := w.Close(); err != nil {
			b.Fatal(err)
		}
		out, err := cdr.ReadAll(cdr.NewCSVReader(&buf))
		if err != nil || len(out) != len(sample) {
			b.Fatalf("round trip: %v (%d records)", err, len(out))
		}
	}
}

// writerBuffer is a minimal in-memory io.Reader/Writer for codec
// benchmarks without bytes.Buffer's growth checks dominating.
type writerBuffer struct {
	data []byte
	pos  int
}

func (w *writerBuffer) Write(p []byte) (int, error) {
	w.data = append(w.data, p...)
	return len(p), nil
}

func (w *writerBuffer) Read(p []byte) (int, error) {
	if w.pos >= len(w.data) {
		return 0, io.EOF
	}
	n := copy(p, w.data[w.pos:])
	w.pos += n
	return n, nil
}

// BenchmarkFOTAPolicies is the design-choice ablation: the same
// campaign under naive, randomized and segment-aware policies,
// reporting busy-cell impact and completion time.
func BenchmarkFOTAPolicies(b *testing.B) {
	_, _, cleaned, ctx := benchScene(b)
	segments := fota.SegmentsFromReport(cleaned, ctx, 10)
	windows := fota.PlanWindows(cleaned, ctx, 8, 4)
	base := fota.DefaultConfig(nil)
	var results []fota.Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results = fota.Compare(cleaned, ctx, segments, base,
			fota.NaivePolicy{},
			fota.RandomizedPolicy{P: 0.25, Seed: 1},
			fota.SegmentAwarePolicy{BusyThreshold: ctx.Load.BusyThreshold()},
			fota.ScheduledPolicy{
				Period:          ctx.Period,
				TZOffsetSeconds: ctx.TZOffsetSeconds,
				Windows:         windows,
				BusyThreshold:   ctx.Load.BusyThreshold(),
			},
		)
	}
	b.StopTimer()
	reportOnce("FOTA ablation",
		fmt.Sprintf("busy-byte share naive/randomized/segment-aware/scheduled: %.1f%%/%.1f%%/%.1f%%/%.1f%% | mean days %.1f/%.1f/%.1f/%.1f",
			results[0].BusyShare()*100, results[1].BusyShare()*100,
			results[2].BusyShare()*100, results[3].BusyShare()*100,
			results[0].MeanDaysToComplete, results[1].MeanDaysToComplete,
			results[2].MeanDaysToComplete, results[3].MeanDaysToComplete))
}

// BenchmarkAblationAggregateGap sweeps the §3 session concatenation
// gap (paper: 30 s) and reports the session count at each setting.
func BenchmarkAblationAggregateGap(b *testing.B) {
	_, _, cleaned, _ := benchScene(b)
	gaps := []time.Duration{10 * time.Second, 30 * time.Second, 2 * time.Minute, 10 * time.Minute}
	counts := make([]int, len(gaps))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for gi, gap := range gaps {
			sessions, err := clean.Sessions(cdr.NewSliceReader(cleaned), gap)
			if err != nil {
				b.Fatal(err)
			}
			counts[gi] = len(sessions)
		}
	}
	b.StopTimer()
	reportOnce("Ablation gap",
		fmt.Sprintf("sessions at 10s/30s/2m/10m gaps: %d/%d/%d/%d (30 s is the paper's aggregate-session setting)",
			counts[0], counts[1], counts[2], counts[3]))
}

// BenchmarkAblationTruncation sweeps the §3 truncation limit (paper:
// 600 s) and reports the per-car connected-time mean at each setting.
func BenchmarkAblationTruncation(b *testing.B) {
	_, _, cleaned, ctx := benchScene(b)
	limits := []int64{300, 600, 1200}
	means := make([]float64, len(limits))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for li, lim := range limits {
			var total, n float64
			perCar := map[cdr.CarID]int64{}
			for _, r := range cleaned {
				sec := int64(r.Duration / time.Second)
				if sec > lim {
					sec = lim
				}
				perCar[r.Car] += sec
			}
			for _, sec := range perCar {
				total += float64(sec)
				n++
			}
			means[li] = total / n / float64(ctx.Period.Seconds())
		}
	}
	b.StopTimer()
	reportOnce("Ablation truncation",
		fmt.Sprintf("mean connected share at 300/600/1200 s caps: %.2f%%/%.2f%%/%.2f%% (paper truncates at 600 s)",
			means[0]*100, means[1]*100, means[2]*100))
}

// BenchmarkAblationBusyThreshold sweeps the busy-cell threshold
// (paper: 80%) and reports the >50%-busy car share at each setting.
func BenchmarkAblationBusyThreshold(b *testing.B) {
	scene, _, cleaned, _ := benchScene(b)
	thresholds := []float64{0.7, 0.8, 0.9}
	overHalf := make([]float64, len(thresholds))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for ti, th := range thresholds {
			ctx := analysis.Context{
				Period: scene.Config.Period,
				Load:   thresholdSource{scene.Load, th},
			}
			bt := analysis.BusyTimeOf(cleaned, ctx)
			overHalf[ti] = bt.OverHalf
		}
	}
	b.StopTimer()
	reportOnce("Ablation busy threshold",
		fmt.Sprintf("cars >50%% busy at 70/80/90%% thresholds: %.2f%%/%.2f%%/%.2f%% (paper uses 80%%)",
			overHalf[0]*100, overHalf[1]*100, overHalf[2]*100))
}

// thresholdSource overrides a load source's busy threshold.
type thresholdSource struct {
	load.Source
	threshold float64
}

func (t thresholdSource) BusyThreshold() float64 { return t.threshold }

// BenchmarkPredictability is the §4.7 extension: backtest per-car
// hourly appearance prediction, train 8 weeks → evaluate 4, and report
// the predictability→accuracy gradient.
func BenchmarkPredictability(b *testing.B) {
	_, _, cleaned, ctx := benchScene(b)
	var res predict.FleetResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res = predict.BacktestFleet(cleaned, ctx.Period, ctx.TZOffsetSeconds, 8, 4, 0.5)
	}
	b.StopTimer()
	reportOnce("Predictability (extension)",
		fmt.Sprintf("fleet F1 %.2f; quartile F1 low→high %.2f/%.2f/%.2f/%.2f (top quartile mixes in sparse rare cars)",
			res.Overall.F1(),
			res.ByPredictability[0].F1(), res.ByPredictability[1].F1(),
			res.ByPredictability[2].F1(), res.ByPredictability[3].F1()))
	b.ReportMetric(res.Overall.F1(), "F1")
}

// BenchmarkCarClustering is the §1 extension: behavioural clustering
// of cars by weekly appearance profile.
func BenchmarkCarClustering(b *testing.B) {
	_, _, cleaned, ctx := benchScene(b)
	var clusters []predict.CarCluster
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewPCG(9, 0xC1A5))
		clusters = predict.ClusterCars(cleaned, ctx.Period, ctx.TZOffsetSeconds, 8, 4, rng)
	}
	b.StopTimer()
	sizes := make([]int, len(clusters))
	maxWeekend := 0.0
	for i, c := range clusters {
		sizes[i] = len(c.Cars)
		if s := c.WeekendShare(); s > maxWeekend {
			maxWeekend = s
		}
	}
	reportOnce("Car clustering (extension)",
		fmt.Sprintf("k=4 behavioural clusters %v; one cluster is weekend-dominated (share %.0f%%)", sizes, maxWeekend*100))
}

// BenchmarkExternalSort measures the disk-backed sorter on the bench
// stream with forced spilling.
func BenchmarkExternalSort(b *testing.B) {
	_, _, cleaned, _ := benchScene(b)
	sample := cleaned
	if len(sample) > 300000 {
		sample = sample[:300000]
	}
	// Shuffle a copy so the sorter has real work.
	shuffled := make([]cdr.Record, len(sample))
	copy(shuffled, sample)
	rng := rand.New(rand.NewPCG(1, 2))
	rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
	dir := b.TempDir()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var out cdr.SliceWriter
		err := cdr.ExternalSort(cdr.NewSliceReader(shuffled), &out,
			cdr.ExternalSortConfig{ChunkRecords: 64 << 10, TempDir: dir})
		if err != nil {
			b.Fatal(err)
		}
		if !cdr.Sorted(out.Records) {
			b.Fatal("not sorted")
		}
	}
	b.SetBytes(int64(len(shuffled)) * 28)
}

// BenchmarkGenerateParallel compares parallel generation throughput
// against the sequential path on a small scene.
func BenchmarkGenerateParallel(b *testing.B) {
	cfg := cellcars.DefaultSceneConfig(200)
	cfg.Period = simtime.NewPeriod(time.Date(2017, 1, 2, 0, 0, 0, 0, time.UTC), 7)
	scene := cellcars.NewScene(cfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var out cdr.SliceWriter
		if _, err := scene.GenerateParallel(&out, 8); err != nil {
			b.Fatal(err)
		}
	}
}
