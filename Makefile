GO ?= go
FUZZTIME ?= 10s

.PHONY: all build test race vet fuzz-smoke bench bench-smoke ci

all: build

build:
	$(GO) build ./...

# Engine throughput and parallel speedup over ~1M records; the result
# (records/sec per worker count, speedup vs sequential, GOMAXPROCS)
# is recorded in BENCH_engine.json.
bench:
	$(GO) run ./cmd/enginebench -records 1000000 -workers 1,4,8 -out BENCH_engine.json

# A fast CI invocation of the same harness: small workload, one rep,
# result discarded. Catches bit-rot in the bench path, not performance.
bench-smoke:
	$(GO) run ./cmd/enginebench -records 50000 -reps 1 -workers 1,4 -out BENCH_engine.smoke.json
	rm -f BENCH_engine.smoke.json

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Short fuzz runs over the codec entry points; go test accepts one
# -fuzz pattern per invocation, hence two runs.
fuzz-smoke:
	$(GO) test ./internal/cdr -run='^$$' -fuzz=FuzzCSVReader -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/cdr -run='^$$' -fuzz=FuzzBinaryReader -fuzztime=$(FUZZTIME)

ci: vet build race bench-smoke fuzz-smoke
