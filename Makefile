GO ?= go
FUZZTIME ?= 10s

.PHONY: all build test race vet fuzz-smoke ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Short fuzz runs over the codec entry points; go test accepts one
# -fuzz pattern per invocation, hence two runs.
fuzz-smoke:
	$(GO) test ./internal/cdr -run='^$$' -fuzz=FuzzCSVReader -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/cdr -run='^$$' -fuzz=FuzzBinaryReader -fuzztime=$(FUZZTIME)

ci: vet build race fuzz-smoke
