GO ?= go
FUZZTIME ?= 10s
# cover fails when total statement coverage drops below this.
COVER_MIN ?= 70

.PHONY: all build test race vet fmt fuzz-smoke bench bench-smoke bench-regress chaos cover ci

all: build

build:
	$(GO) build ./...

# Engine throughput and parallel speedup over ~1M records; the result
# (records/sec per worker count, speedup vs sequential, GOMAXPROCS,
# checkpoint overhead) is recorded in BENCH_engine.json.
bench:
	$(GO) run ./cmd/enginebench -records 1000000 -workers 1,4,8 -out BENCH_engine.json

# A fast CI invocation of the same harness: small workload, one rep,
# result discarded. Catches bit-rot in the bench path, not performance.
# The grep asserts the instrumented run produced its per-stage timing
# section — the observability layer silently off would pass otherwise.
bench-smoke:
	$(GO) run ./cmd/enginebench -records 50000 -reps 1 -workers 1,4 -ckpt-every 20000 -out BENCH_engine.smoke.json
	grep -q '"stages"' BENCH_engine.smoke.json
	rm -f BENCH_engine.smoke.json

# Throughput regression gate: re-run the committed baseline's workload
# and fail when records/sec regressed beyond the rep-spread noise of
# either run plus a 5% floor. Self-skipping (exit 0 with a warning)
# when GOMAXPROCS/NumCPU differ from the machine that produced
# BENCH_engine.json, so it only bites where the comparison means
# something.
bench-regress:
	$(GO) run ./cmd/enginebench -baseline BENCH_engine.json

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The coordinator fault-tolerance suite under the race detector:
# workers killed mid-stream, hung until speculation or timeout,
# bit-flipped snapshots quarantined, plus the SIGTERM-checkpoint and
# corrupt-partial CLI paths. -count=1 defeats the test cache — chaos
# runs must actually run.
chaos:
	$(GO) test -race -count=1 ./internal/drive/ ./cmd/caranalyze/ ./cmd/carmerge/

# STATICCHECK pins the honnef.co/go/tools version CI installs; vet
# runs it when the binary is on PATH and degrades to a warning when it
# is not (the offline dev loop must not require a network install).
STATICCHECK_VERSION ?= 2024.1.1

vet:
	$(GO) vet ./...
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (CI runs it via honnef.co/go/tools@$(STATICCHECK_VERSION))"; \
	fi

# Gate: the tree must be gofmt-clean.
fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# Statement coverage with a floor: prints the total and fails when it
# drops below COVER_MIN.
cover:
	$(GO) test -coverprofile=cover.out ./...
	@total="$$($(GO) tool cover -func=cover.out | awk '/^total:/ {gsub(/%/,"",$$3); print $$3}')"; \
	echo "total statement coverage: $$total% (floor $(COVER_MIN)%)"; \
	awk -v t="$$total" -v m="$(COVER_MIN)" 'BEGIN { exit !(t+0 >= m+0) }' || \
		{ echo "coverage $$total% is below the $(COVER_MIN)% floor"; exit 1; }

# Short fuzz runs over the codec entry points; go test accepts one
# -fuzz pattern per invocation, hence one run per target.
fuzz-smoke:
	$(GO) test ./internal/cdr -run='^$$' -fuzz=FuzzCSVReader -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/cdr -run='^$$' -fuzz=FuzzBinaryReader -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/snapshot -run='^$$' -fuzz=FuzzReader -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/analysis -run='^$$' -fuzz=FuzzReadPartial -fuzztime=$(FUZZTIME)

ci: fmt vet build race chaos bench-smoke bench-regress fuzz-smoke
